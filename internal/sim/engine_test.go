package sim

import (
	"testing"
	"time"
)

func TestEngineOrdering(t *testing.T) {
	e := New()
	var got []int
	e.After(30*time.Millisecond, func() { got = append(got, 3) })
	e.After(10*time.Millisecond, func() { got = append(got, 1) })
	e.After(20*time.Millisecond, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != Time(30*time.Millisecond) {
		t.Fatalf("Now = %v, want 30ms", e.Now())
	}
}

func TestEngineTieBreakFIFO(t *testing.T) {
	e := New()
	var got []int
	at := Time(5 * time.Millisecond)
	for i := 0; i < 10; i++ {
		i := i
		e.At(at, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant events ran out of order: %v", got)
		}
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := New()
	e.After(time.Second, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(Time(1), func() {})
}

func TestRunUntilAdvancesClock(t *testing.T) {
	e := New()
	fired := false
	e.After(10*time.Second, func() { fired = true })
	e.RunUntil(Time(3 * time.Second))
	if fired {
		t.Fatal("future event fired early")
	}
	if e.Now() != Time(3*time.Second) {
		t.Fatalf("Now = %v, want 3s", e.Now())
	}
	e.Run()
	if !fired {
		t.Fatal("event never fired")
	}
}

func TestEngineStop(t *testing.T) {
	e := New()
	n := 0
	for i := 0; i < 5; i++ {
		e.After(time.Duration(i)*time.Millisecond, func() {
			n++
			if n == 2 {
				e.Stop()
			}
		})
	}
	e.Run()
	if n != 2 {
		t.Fatalf("ran %d events after Stop, want 2", n)
	}
	e.Run() // resumes
	if n != 5 {
		t.Fatalf("ran %d events total, want 5", n)
	}
}

func TestProcSleep(t *testing.T) {
	e := New()
	var wake Time
	e.Go("sleeper", func(p *Proc) {
		p.Sleep(42 * time.Millisecond)
		wake = p.Now()
	})
	e.Run()
	if wake != Time(42*time.Millisecond) {
		t.Fatalf("woke at %v, want 42ms", wake)
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("LiveProcs = %d, want 0", e.LiveProcs())
	}
}

func TestProcParkUnpark(t *testing.T) {
	e := New()
	var order []string
	var waiter *Proc
	waiter = e.Go("waiter", func(p *Proc) {
		order = append(order, "park")
		p.Park()
		order = append(order, "woken")
	})
	e.Go("waker", func(p *Proc) {
		p.Sleep(time.Second)
		order = append(order, "wake")
		waiter.Unpark()
	})
	e.Run()
	want := []string{"park", "wake", "woken"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestUnparkIdempotent(t *testing.T) {
	e := New()
	wakes := 0
	var waiter *Proc
	waiter = e.Go("waiter", func(p *Proc) {
		p.Park()
		wakes++
		p.Sleep(10 * time.Second) // still parked-free when dup wakeups fire
	})
	e.Go("waker", func(p *Proc) {
		p.Sleep(time.Millisecond)
		waiter.Unpark()
		waiter.Unpark()
		waiter.Unpark()
	})
	e.Run()
	if wakes != 1 {
		t.Fatalf("proc woke %d times, want 1", wakes)
	}
}

func TestWaitQueueFIFO(t *testing.T) {
	e := New()
	var wq WaitQueue
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		e.Go("w", func(p *Proc) {
			wq.Wait(p)
			order = append(order, i)
		})
	}
	e.Go("waker", func(p *Proc) {
		p.Sleep(time.Millisecond)
		if wq.Len() != 4 {
			t.Errorf("Len = %d, want 4", wq.Len())
		}
		wq.Wake(2)
		p.Sleep(time.Millisecond)
		wq.Wake(-1)
	})
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("wake order = %v, want FIFO", order)
		}
	}
	if wq.Len() != 0 {
		t.Fatalf("queue not drained: %d", wq.Len())
	}
}

func TestResourceFIFOSerialization(t *testing.T) {
	e := New()
	cpu := NewResource(e, "cpu")
	var done []Time
	for i := 0; i < 3; i++ {
		e.Go("user", func(p *Proc) {
			cpu.Use(p, 10*time.Millisecond)
			done = append(done, p.Now())
		})
	}
	e.Run()
	want := []Time{Time(10 * time.Millisecond), Time(20 * time.Millisecond), Time(30 * time.Millisecond)}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completions = %v, want %v", done, want)
		}
	}
	if got := cpu.Uses(); got != 3 {
		t.Fatalf("Uses = %d, want 3", got)
	}
	if u := cpu.Utilization(); u < 0.99 || u > 1.0 {
		t.Fatalf("Utilization = %v, want ≈1", u)
	}
}

func TestResourceIdleGap(t *testing.T) {
	e := New()
	r := NewResource(e, "disk")
	e.Go("a", func(p *Proc) {
		r.Use(p, 5*time.Millisecond)
	})
	e.Go("b", func(p *Proc) {
		p.Sleep(100 * time.Millisecond) // arrive long after r idle
		t0 := p.Now()
		r.Use(p, 5*time.Millisecond)
		if p.Now().Sub(t0) != 5*time.Millisecond {
			t.Errorf("service after idle took %v, want 5ms", p.Now().Sub(t0))
		}
	})
	e.Run()
	if u := r.Utilization(); u > 0.15 {
		t.Fatalf("Utilization = %v, want ≈0.095", u)
	}
}

func TestCostModelArithmetic(t *testing.T) {
	c := DefaultCosts()
	if got := c.Copy(1000); got != time.Duration(1000*c.CopyPSPerByte/1000) {
		t.Fatalf("Copy(1000) = %v", got)
	}
	if c.Copy(0) != 0 || c.Cksum(0) != 0 {
		t.Fatal("zero-byte costs must be zero")
	}
	if c.Copy(1) <= 0 {
		t.Fatal("per-byte copy cost rounds to zero; use picosecond units")
	}
	if c.Cksum(4096) >= c.Copy(4096) {
		t.Fatal("checksum should be cheaper than copy")
	}
	if c.DiskTransfer(1<<20) <= 0 {
		t.Fatal("disk transfer cost missing")
	}
}

func TestNestedGoFromProc(t *testing.T) {
	e := New()
	hits := 0
	e.Go("outer", func(p *Proc) {
		p.Sleep(time.Millisecond)
		e.Go("inner", func(q *Proc) {
			q.Sleep(time.Millisecond)
			hits++
		})
		p.Sleep(5 * time.Millisecond)
		hits++
	})
	e.Run()
	if hits != 2 {
		t.Fatalf("hits = %d, want 2", hits)
	}
}
