package sim

import "time"

// ChargeKind classifies a metered charge for attribution (see OnCharge).
type ChargeKind uint8

const (
	// ChargeCopy is memory-to-memory copy work, in bytes.
	ChargeCopy ChargeKind = iota
	// ChargeCksum is checksum-pass work, in bytes.
	ChargeCksum
	// ChargeSyscall is one kernel crossing (n is always 1).
	ChargeSyscall
	// ChargeWire is per-segment protocol work in the netsim pump, in
	// payload bytes.
	ChargeWire
	// NumChargeKinds sizes per-kind accumulator arrays.
	NumChargeKinds
)

// String names the charge kind for reports.
func (k ChargeKind) String() string {
	switch k {
	case ChargeCopy:
		return "copy"
	case ChargeCksum:
		return "cksum"
	case ChargeSyscall:
		return "syscall"
	case ChargeWire:
		return "wire"
	}
	return "?"
}

// CostModel collects every charged cost in the simulated machine. The
// defaults approximate the paper's testbed: a 333 MHz Pentium II with 128 MB
// of memory and 5 switched 100 Mb/s Fast Ethernet adaptors (§5).
//
// Per-byte costs are expressed in picoseconds per byte so that costs of
// small transfers do not round to zero.
type CostModel struct {
	// CopyPSPerByte is the cost of one byte of memory-to-memory copy.
	// Copying "proceeds at memory rather than CPU speed" (§2); mid-range
	// for SDRAM-era memcpy is on the order of 100–170 MB/s.
	CopyPSPerByte int64
	// CksumPSPerByte is the cost of one byte of Internet checksum: a
	// read-only pass, roughly twice as fast as a copy.
	CksumPSPerByte int64
	// TouchPSPerByte is a default cost for application code inspecting each
	// byte (wc-style loops); individual apps may override.
	TouchPSPerByte int64

	// Syscall is the fixed kernel entry/exit cost of one system call.
	Syscall time.Duration
	// PageMap and PageUnmap charge establishing / removing one PTE.
	PageMap   time.Duration
	PageUnmap time.Duration
	// PageFault is the trap overhead of a page fault (excluding any disk
	// time or copy performed by the handler).
	PageFault time.Duration
	// ChunkMap charges changing the protection of one 64 KB IO-Lite chunk
	// in one address space (§4.5); it covers the per-page PTE writes within
	// the chunk plus the VM bookkeeping.
	ChunkMap time.Duration
	// WriteToggle charges granting or revoking temporary write permission
	// on a buffer for an untrusted producer (§3.2).
	WriteToggle time.Duration

	// BufAlloc charges allocating an IO-Lite buffer from a pool with a free
	// buffer available; BufAllocCold charges the slow path that must map a
	// fresh chunk (the "worst-case transfer" of §3.2 adds ChunkMap costs).
	BufAlloc     time.Duration
	BufAllocCold time.Duration
	// AggOp charges one aggregate pointer manipulation (append, split, ...)
	// per slice touched.
	AggOp time.Duration
	// MbufAlloc charges allocating one mbuf header.
	MbufAlloc time.Duration

	// Packet charges the per-packet protocol + driver path (IP/TCP header
	// processing, DMA descriptor setup); it is paid per packet on both send
	// and receive regardless of payload size.
	Packet time.Duration
	// Interrupt charges taking one device interrupt.
	Interrupt time.Duration
	// TCPSetup and TCPTeardown charge connection establishment/termination
	// including the extra packets' control work.
	TCPSetup    time.Duration
	TCPTeardown time.Duration
	// Demux charges the early-demultiplexing packet filter per packet
	// (§3.6).
	Demux time.Duration
	// SegChunk charges the residual per-MSS work inside an offloaded
	// super-segment: the NIC segmentation descriptor / DMA setup for one
	// extra wire chunk beyond the first. It replaces a full Packet +
	// MbufAlloc + Interrupt round for every MSS after the first, which is
	// the whole point of LSO/GRO-style offload.
	SegChunk time.Duration

	// ProcSwitch charges one context switch between processes.
	ProcSwitch time.Duration
	// Fork charges creating one process (Apache's per-connection model
	// amortizes this; FastCGI avoids it).
	Fork time.Duration

	// FileOpen charges a name lookup + descriptor setup.
	FileOpen time.Duration
	// CacheLookup charges one file cache lookup.
	CacheLookup time.Duration
	// CksumLookup charges one checksum-cache probe that hits (§3.9): a hash
	// of ⟨buffer, generation, offset, length⟩ instead of a pass over the
	// bytes. Misses charge Cksum for the bytes on top.
	CksumLookup time.Duration

	// meter accumulates the per-byte work the model has priced out, for
	// tests and benchmarks that assert "zero copies on this path" or report
	// copies avoided. Copy and Cksum are only invoked where the resulting
	// duration is charged, so the meter tracks charged work. meterSyscalls
	// counts kernel crossings priced via MeterSyscall — the currency the
	// submission ring economizes.
	meterCopied   int64
	meterCksum    int64
	meterSyscalls int64

	// DiskSeek is the average positioning time per disk request;
	// DiskPSPerByte the media transfer cost per byte.
	DiskSeek      time.Duration
	DiskPSPerByte int64

	// OnCharge, when non-nil, observes every metered charge as it is
	// priced: copy and checksum bytes, kernel crossings, and (via
	// EmitWire) per-segment wire work. bind carries an explicit
	// attribution context when the charging site knows one (the netsim
	// pump working on behalf of a sender); nil means "resolve from the
	// running process". The single nil check below is the whole cost
	// when observability is off.
	OnCharge func(kind ChargeKind, n int64, bind interface{})
}

// DefaultCosts returns the calibrated cost model. Calibration anchors:
//
//   - §5.8 wc on a cached 1.75 MB file: eliminating one kernel→user copy and
//     paying per-page maps instead must save ≈ 35 % of runtime.
//   - Figure 3 large-file plateau: Flash-Lite ≈ 380 Mb/s (close to the
//     5×100 Mb/s links), Flash ≈ 270 Mb/s, i.e. copy+checksum ≈ 40 % of the
//     per-byte path.
//   - Figure 3 small files: ≤ 5 KB requests are dominated by per-request
//     control (TCP setup + syscalls + server work), where Flash and
//     Flash-Lite tie.
func DefaultCosts() *CostModel {
	return &CostModel{
		CopyPSPerByte:  7500, // 7.5 ns/B ≈ 133 MB/s memcpy
		CksumPSPerByte: 3800, // 3.8 ns/B ≈ 263 MB/s checksum pass
		TouchPSPerByte: 9000, // 9 ns/B byte-at-a-time application loop

		Syscall:     3 * time.Microsecond,
		PageMap:     1500 * time.Nanosecond,
		PageUnmap:   1000 * time.Nanosecond,
		PageFault:   12 * time.Microsecond,
		ChunkMap:    9 * time.Microsecond,
		WriteToggle: 6 * time.Microsecond,

		BufAlloc:     1200 * time.Nanosecond,
		BufAllocCold: 15 * time.Microsecond,
		AggOp:        250 * time.Nanosecond,
		MbufAlloc:    400 * time.Nanosecond,

		Packet:      19 * time.Microsecond,
		Interrupt:   5 * time.Microsecond,
		TCPSetup:    90 * time.Microsecond,
		TCPTeardown: 45 * time.Microsecond,
		Demux:       1500 * time.Nanosecond,
		SegChunk:    700 * time.Nanosecond,

		ProcSwitch: 11 * time.Microsecond,
		Fork:       350 * time.Microsecond,

		FileOpen:    14 * time.Microsecond,
		CacheLookup: 2 * time.Microsecond,
		CksumLookup: 400 * time.Nanosecond,

		DiskSeek:      7500 * time.Microsecond,
		DiskPSPerByte: 55000, // 55 ns/B ≈ 18 MB/s media rate
	}
}

// Copy returns the cost of copying n bytes and meters them as charged copy
// work. Callers that only want the price (test assertions, capacity math)
// must use PriceCopy instead, which leaves the meter alone.
func (c *CostModel) Copy(n int) time.Duration {
	c.meterCopied += int64(n)
	if c.OnCharge != nil {
		c.OnCharge(ChargeCopy, int64(n), nil)
	}
	return c.PriceCopy(n)
}

// PriceCopy returns the cost of copying n bytes without metering.
func (c *CostModel) PriceCopy(n int) time.Duration {
	return time.Duration(int64(n) * c.CopyPSPerByte / 1000)
}

// Cksum returns the cost of checksumming n bytes and meters them as charged
// checksum work. Pure queries must use PriceCksum.
func (c *CostModel) Cksum(n int) time.Duration {
	c.meterCksum += int64(n)
	if c.OnCharge != nil {
		c.OnCharge(ChargeCksum, int64(n), nil)
	}
	return c.PriceCksum(n)
}

// PriceCksum returns the cost of checksumming n bytes without metering.
func (c *CostModel) PriceCksum(n int) time.Duration {
	return time.Duration(int64(n) * c.CksumPSPerByte / 1000)
}

// MeterSyscall returns the cost of one kernel crossing and counts it.
// Every charged syscall entry point routes through this, so the counter is
// the machine-wide syscall tally (pure price queries read Syscall directly).
func (c *CostModel) MeterSyscall() time.Duration {
	c.meterSyscalls++
	if c.OnCharge != nil {
		c.OnCharge(ChargeSyscall, 1, nil)
	}
	return c.Syscall
}

// EmitWire reports n bytes of per-segment wire work to the attribution
// hook on behalf of bind (the sender whose payload fills the segment).
// Wire work is not metered — packet counters live on netsim.Host — so
// this only feeds OnCharge and is free when no hook is installed.
func (c *CostModel) EmitWire(n int64, bind interface{}) {
	if c.OnCharge != nil {
		c.OnCharge(ChargeWire, n, bind)
	}
}

// MeterSyscallCount reports the syscalls charged since the last ResetMeter.
func (c *CostModel) MeterSyscallCount() int64 { return c.meterSyscalls }

// MeterCopiedBytes reports the bytes of copy work priced since the last
// ResetMeter — every site that charges CostModel.Copy, machine-wide.
func (c *CostModel) MeterCopiedBytes() int64 { return c.meterCopied }

// MeterCksumBytes reports the bytes of checksum work priced since the last
// ResetMeter (checksum-cache hits never reach Cksum, so they don't count).
func (c *CostModel) MeterCksumBytes() int64 { return c.meterCksum }

// ResetMeter zeroes the charged-work meter.
func (c *CostModel) ResetMeter() { c.meterCopied, c.meterCksum, c.meterSyscalls = 0, 0, 0 }

// ResetMeters implements the obs.Resetter seam (alias for ResetMeter).
func (c *CostModel) ResetMeters() { c.ResetMeter() }

// Touch returns the default cost of application code examining n bytes.
func (c *CostModel) Touch(n int) time.Duration {
	return time.Duration(int64(n) * c.TouchPSPerByte / 1000)
}

// DiskTransfer returns the media transfer cost for n bytes (positioning
// excluded).
func (c *CostModel) DiskTransfer(n int) time.Duration {
	return time.Duration(int64(n) * c.DiskPSPerByte / 1000)
}
