// Package sim provides the deterministic discrete-event simulation engine
// that the IO-Lite reproduction runs on: a virtual clock, an event heap, a
// cooperative process model with synchronous hand-off, FIFO resources for
// modelling a CPU, and the calibrated cost model approximating the paper's
// 333 MHz Pentium II testbed.
//
// All simulated activity is single-threaded from the engine's point of view:
// exactly one of {engine, some process} runs at any instant, so simulated
// state needs no locking and every run is reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is an absolute instant on the virtual clock, in nanoseconds since the
// start of the simulation.
type Time int64

// Duration is re-exported so callers do not need to import time just to
// express simulated durations.
type Duration = time.Duration

// String formats the instant as a duration since simulation start.
func (t Time) String() string { return time.Duration(t).String() }

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// event is a scheduled callback. Events at equal instants fire in schedule
// order (seq breaks ties) so runs are deterministic.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is not usable; create
// engines with New.
type Engine struct {
	now     Time
	events  eventHeap
	seq     uint64
	stopped bool

	// procs tracks live simulated processes for leak diagnostics.
	procs map[*Proc]struct{}

	// running is the proc currently dispatched (nil in engine context);
	// attribution hooks use it to find whose work is being charged.
	running *Proc

	// wheel is the engine's shared timer wheel, created on first use (see
	// Engine.Wheel in wheel.go).
	wheel *Wheel
}

// New returns an empty engine with the clock at zero.
func New() *Engine {
	return &Engine{procs: make(map[*Proc]struct{})}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at instant t. Scheduling in the past panics: it
// always indicates a modelling bug.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: event scheduled at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current instant.
func (e *Engine) After(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now.Add(d), fn)
}

// Step runs the earliest pending event and reports whether one existed.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.at
	ev.fn()
	return true
}

// Run executes events until none remain or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with timestamps not after t, then sets the clock
// to t. Events scheduled beyond t remain pending.
func (e *Engine) RunUntil(t Time) {
	e.stopped = false
	for !e.stopped && len(e.events) > 0 && e.events[0].at <= t {
		e.Step()
	}
	if !e.stopped && e.now < t {
		e.now = t
	}
}

// RunFor advances the simulation by d. See RunUntil.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now.Add(d)) }

// Stop makes the innermost Run/RunUntil return after the current event.
func (e *Engine) Stop() { e.stopped = true }

// Pending reports how many events are queued.
func (e *Engine) Pending() int { return len(e.events) }

// LiveProcs reports how many simulated processes have been started and have
// not yet returned. Useful for detecting leaked (permanently blocked)
// processes in tests.
func (e *Engine) LiveProcs() int { return len(e.procs) }

// Running returns the proc currently executing, or nil when the engine
// itself (an event callback) is running.
func (e *Engine) Running() *Proc { return e.running }
