package sim

// Wheel is a hierarchical timer wheel: the shared timing substrate that
// retransmit timers, request deadlines, backoff sleeps, and delayed-failure
// injection all hang off. A wheel trades precision for cost the way kernel
// timer wheels do — timers land in slots of one tick's width and fire at
// slot boundaries — which fits its users exactly: an RTO, a deadline, or a
// backoff delay is a coarse bound, not an instant, and the overwhelmingly
// common operation is Cancel (the ack arrived, the response landed) which
// must be O(1).
//
// The wheel has wheelLevels levels of wheelSlots slots each. Level 0 slots
// are one tick wide; each higher level's slots are wheelSlots times wider.
// A timer further out than level 0 covers parks in the coarser level that
// can hold it and cascades down as the wheel turns, so scheduling, firing,
// and cascading are all O(1) amortized per timer.
//
// The wheel advances lazily on the engine's event heap: it keeps exactly
// one pending wake event, armed at the earliest occupied slot boundary, so
// an idle wheel costs the engine nothing and a canceled timer leaves at
// most one spurious no-op wake behind.
const (
	wheelSlots  = 64
	wheelLevels = 4
)

// DefaultTick is the granularity of an engine's shared wheel: fine enough
// that a 1 ms minimum RTO or a 5 ms deadline is off by at most 2%, coarse
// enough that four levels span over an hour of virtual time.
const DefaultTick = 50 * Microsecond

// Microsecond and Millisecond re-export the time units for wheel-tick and
// timeout arithmetic.
const (
	Microsecond = Duration(1000)
	Millisecond = Duration(1000000)
)

// Timer is one scheduled callback on a wheel. The zero value is invalid;
// Schedule returns live timers.
type Timer struct {
	fn       func()
	at       int64 // absolute expiry, in ticks
	canceled bool
	fired    bool
}

// Cancel stops the timer and reports whether it was still pending (false
// means the callback already fired). Cancel is O(1): the slot entry stays
// behind and is skipped when its slot drains.
func (t *Timer) Cancel() bool {
	if t.fired || t.canceled {
		return false
	}
	t.canceled = true
	return true
}

// Pending reports whether the timer is still armed.
func (t *Timer) Pending() bool { return !t.fired && !t.canceled }

// Wheel is a hierarchical timer wheel bound to one engine.
type Wheel struct {
	eng  *Engine
	tick Duration

	// cursor is the current wheel time in ticks (floor(now/tick)).
	cursor int64
	levels [wheelLevels][wheelSlots][]*Timer
	count  int // pending (non-canceled) timers

	// wakeAt is the tick the armed engine event will advance to; <0 when
	// no wake is armed.
	wakeAt int64
}

// NewWheel creates a wheel with the given tick on e.
func NewWheel(e *Engine, tick Duration) *Wheel {
	if tick <= 0 {
		tick = DefaultTick
	}
	w := &Wheel{eng: e, tick: tick, wakeAt: -1}
	w.cursor = w.ticks(e.Now())
	return w
}

// Wheel returns the engine's shared timer wheel (DefaultTick granularity),
// creating it on first use. Sharing one wheel is the point: retransmit,
// deadline, and backoff timers from every subsystem land in the same slots
// and ride the same wake events.
func (e *Engine) Wheel() *Wheel {
	if e.wheel == nil {
		e.wheel = NewWheel(e, DefaultTick)
	}
	return e.wheel
}

// Tick returns the wheel's slot granularity.
func (w *Wheel) Tick() Duration { return w.tick }

// Pending reports how many timers are armed (canceled ones are excluded).
func (w *Wheel) Pending() int { return w.count }

// ticks converts an absolute instant to wheel ticks, rounding up so a
// timer never fires early.
func (w *Wheel) ticks(t Time) int64 {
	return (int64(t) + int64(w.tick) - 1) / int64(w.tick)
}

// Schedule arms fn to fire d from now (rounded up to the next tick
// boundary) and returns its timer. Engine or proc context.
func (w *Wheel) Schedule(d Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return w.ScheduleAt(w.eng.Now().Add(d), fn)
}

// ScheduleAt arms fn to fire at instant at (rounded up to a tick).
func (w *Wheel) ScheduleAt(at Time, fn func()) *Timer {
	t := &Timer{fn: fn, at: w.ticks(at)}
	if t.at <= w.cursor {
		t.at = w.cursor + 1 // a due-now timer fires on the next boundary
	}
	w.place(t)
	w.count++
	w.arm(t.at)
	return t
}

// place files t into the finest level whose span reaches its expiry.
func (w *Wheel) place(t *Timer) {
	delta := t.at - w.cursor
	span := int64(wheelSlots)
	for lv := 0; lv < wheelLevels; lv++ {
		if delta <= span || lv == wheelLevels-1 {
			// Slot index within this level's ring. Level 0 slots are
			// addressed by expiry tick; level L>0 by expiry divided by the
			// slot width, so cascading drains a coarse slot exactly when
			// its sub-range begins.
			width := int64(1)
			for i := 0; i < lv; i++ {
				width *= wheelSlots
			}
			idx := (t.at / width) % wheelSlots
			w.levels[lv][idx] = append(w.levels[lv][idx], t)
			return
		}
		span *= wheelSlots
	}
}

// arm makes sure an engine wake event exists at or before tick at.
func (w *Wheel) arm(at int64) {
	if w.wakeAt >= 0 && w.wakeAt <= at {
		return
	}
	w.wakeAt = at
	wake := at
	w.eng.At(Time(wake*int64(w.tick)), func() { w.advance(wake) })
}

// advance turns the wheel to tick target: level-0 slots on the way fire,
// coarser slots whose sub-range begins cascade down. Spurious wakes (a
// fresher wake was armed, or every timer canceled) are cheap no-ops.
func (w *Wheel) advance(target int64) {
	if w.wakeAt == target {
		w.wakeAt = -1
	}
	if target <= w.cursor {
		return
	}
	for w.cursor < target {
		w.cursor++
		w.drain(0, w.cursor%wheelSlots)
		// Cascade: when the cursor crosses a coarser slot boundary, that
		// level's current slot re-files into finer levels.
		width := int64(wheelSlots)
		for lv := 1; lv < wheelLevels && w.cursor%width == 0; lv++ {
			w.drain(lv, (w.cursor/width)%wheelSlots)
			width *= wheelSlots
		}
	}
	w.rearm()
}

// drain empties one slot: due timers fire, canceled ones drop, and (for
// coarse levels) not-yet-due timers re-file into finer levels.
func (w *Wheel) drain(lv int, idx int64) {
	slot := w.levels[lv][idx]
	if len(slot) == 0 {
		return
	}
	w.levels[lv][idx] = nil
	for _, t := range slot {
		switch {
		case t.canceled:
			w.count--
		case t.at <= w.cursor:
			t.fired = true
			w.count--
			t.fn()
		default:
			w.place(t)
		}
	}
}

// rearm schedules the next wake at the earliest occupied slot, if any
// timers remain.
func (w *Wheel) rearm() {
	if w.count == 0 {
		return
	}
	earliest := int64(-1)
	width := int64(1)
	for lv := 0; lv < wheelLevels; lv++ {
		for idx := 0; idx < wheelSlots; idx++ {
			for _, t := range w.levels[lv][idx] {
				if !t.canceled && (earliest < 0 || t.at < earliest) {
					earliest = t.at
				}
			}
		}
		width *= wheelSlots
	}
	if earliest < 0 {
		return
	}
	w.arm(earliest)
}

// Sleep parks p for d, timed by the wheel instead of a private engine
// event — the backoff primitive. Precision is one tick, rounded up.
func (w *Wheel) Sleep(p *Proc, d Duration) {
	done := false
	w.Schedule(d, func() {
		done = true
		p.Unpark()
	})
	for !done {
		p.Park()
	}
}
