package sim

import (
	"fmt"
	"sort"
)

// Proc is a simulated process: a goroutine that runs in lock-step with the
// engine. At any instant exactly one of {engine, one proc} executes, with
// synchronous hand-off in both directions, so simulated code never races and
// every interleaving is deterministic.
//
// Simulated code running inside the proc may call the blocking operations
// (Sleep, SleepUntil, Park) and anything built on them. Engine-side code
// (event callbacks) may call Unpark.
type Proc struct {
	eng  *Engine
	name string

	// resume carries control from the engine to the proc; parked carries it
	// back. Both are unbuffered: each send is a synchronous hand-off.
	resume chan struct{}
	parked chan struct{}

	dead bool // set when the proc function has returned

	// parkSeq counts Park calls, letting Unpark detect stale wakeups.
	parkSeq uint64
	waiting bool

	// attrib is an opaque attribution binding (the observability layer
	// stores the active span here); it rides the proc so charge hooks can
	// find whose request is paying for the work.
	attrib interface{}

	// tenant names the principal whose work this proc is currently doing;
	// QoS layers (fair queueing, rate limiting) read it to decide whose
	// account to charge. Empty means unattributed.
	tenant string
}

// Go starts fn as a simulated process at the current instant. fn runs on its
// own goroutine but only while the engine is suspended waiting for it.
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		eng:    e,
		name:   name,
		resume: make(chan struct{}),
		parked: make(chan struct{}),
	}
	e.procs[p] = struct{}{}
	go func() {
		<-p.resume // wait for first dispatch
		fn(p)
		p.dead = true
		delete(e.procs, p)
		p.parked <- struct{}{} // final hand-off back to the engine
	}()
	// First dispatch happens as a regular event so that Go can be called
	// from engine or proc context alike.
	e.After(0, func() { p.dispatch() })
	return p
}

// Name returns the diagnostic name given to Go.
func (p *Proc) Name() string { return p.name }

// SetAttrib binds an opaque attribution context to the proc (nil clears).
func (p *Proc) SetAttrib(v interface{}) { p.attrib = v }

// Attrib returns the proc's attribution binding, nil if none.
func (p *Proc) Attrib() interface{} { return p.attrib }

// SetTenant tags the proc with the tenant it is working for ("" clears).
func (p *Proc) SetTenant(t string) { p.tenant = t }

// Tenant returns the proc's tenant tag, "" if unattributed.
func (p *Proc) Tenant() string { return p.tenant }

// Engine returns the engine this proc runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.Now() }

// dispatch hands control to the proc and waits for it to park or finish.
// Must be called from engine context.
func (p *Proc) dispatch() {
	if p.dead {
		return
	}
	prev := p.eng.running
	p.eng.running = p
	p.resume <- struct{}{}
	<-p.parked
	p.eng.running = prev
}

// yield parks the proc and returns control to the engine. The proc resumes
// when something calls dispatch again. Must be called from proc context.
func (p *Proc) yield() {
	p.parked <- struct{}{}
	<-p.resume
}

// SleepUntil blocks the proc until instant t.
func (p *Proc) SleepUntil(t Time) {
	if t < p.eng.now {
		return
	}
	p.eng.At(t, func() { p.dispatch() })
	p.yield()
}

// Sleep blocks the proc for duration d.
func (p *Proc) Sleep(d Duration) { p.SleepUntil(p.eng.now.Add(d)) }

// Park blocks the proc indefinitely until another party calls Unpark.
// It returns the instant at which the proc was resumed.
func (p *Proc) Park() Time {
	p.parkSeq++
	p.waiting = true
	p.yield()
	p.waiting = false
	return p.eng.now
}

// Unpark schedules p to resume at the current instant. It is a no-op if p is
// not currently parked (e.g. already woken); this makes wake-up notification
// idempotent, which waitqueue users rely on. May be called from engine or
// proc context.
func (p *Proc) Unpark() {
	if p.dead || !p.waiting {
		return
	}
	seq := p.parkSeq
	p.waiting = false // claim the wakeup so duplicate Unparks are no-ops
	p.eng.After(0, func() {
		if p.dead || p.parkSeq != seq {
			return
		}
		p.dispatch()
	})
}

// WaitQueue is a FIFO list of parked processes, the building block for all
// simulated blocking abstractions (pipe buffers, socket queues, condition
// variables).
type WaitQueue struct {
	q []*Proc
}

// Wait parks the calling proc on the queue until Wake releases it.
func (w *WaitQueue) Wait(p *Proc) {
	w.q = append(w.q, p)
	p.Park()
}

// Wake releases up to n waiters in FIFO order and reports how many were
// released. Wake(-1) releases all.
func (w *WaitQueue) Wake(n int) int {
	if n < 0 || n > len(w.q) {
		n = len(w.q)
	}
	released := w.q[:n]
	w.q = append([]*Proc(nil), w.q[n:]...)
	for _, p := range released {
		p.Unpark()
	}
	return n
}

// Len reports how many procs are parked on the queue.
func (w *WaitQueue) Len() int { return len(w.q) }

// WakeSorted releases every waiter, ordered by ascending rank (stable, so
// equally ranked waiters keep FIFO order). Because Unpark schedules each
// resume as an After(0) event, released procs run in exactly this order —
// a fair-queueing scheduler can rank waiters by virtual time and get
// deterministic weighted service from a plain wait queue.
func (w *WaitQueue) WakeSorted(rank func(*Proc) uint64) int {
	if len(w.q) == 0 {
		return 0
	}
	released := w.q
	w.q = nil
	sort.SliceStable(released, func(i, j int) bool {
		return rank(released[i]) < rank(released[j])
	})
	for _, p := range released {
		p.Unpark()
	}
	return len(released)
}

// String describes the proc for diagnostics.
func (p *Proc) String() string { return fmt.Sprintf("proc(%s)", p.name) }
