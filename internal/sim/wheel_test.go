package sim

import (
	"testing"
	"time"
)

// TestWheelFiresInOrder pins basic ordering: timers fire in expiry order,
// never early, and within one tick of their requested delay.
func TestWheelFiresInOrder(t *testing.T) {
	eng := New()
	w := eng.Wheel()
	var order []int
	delays := []Duration{5 * time.Millisecond, time.Millisecond, 3 * time.Millisecond}
	for i, d := range delays {
		i, d := i, d
		w.Schedule(d, func() {
			order = append(order, i)
			if got := eng.Now(); got < Time(d) {
				t.Errorf("timer %d fired at %v, before its %v delay", i, got, d)
			}
			if got := eng.Now(); got > Time(d)+Time(2*w.Tick()) {
				t.Errorf("timer %d fired at %v, more than 2 ticks after %v", i, got, d)
			}
		})
	}
	eng.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 0 {
		t.Fatalf("fire order = %v, want [1 2 0]", order)
	}
	if w.Pending() != 0 {
		t.Errorf("pending = %d after drain, want 0", w.Pending())
	}
}

// TestWheelCancel pins that a canceled timer never fires and that Cancel
// reports whether it was in time.
func TestWheelCancel(t *testing.T) {
	eng := New()
	w := eng.Wheel()
	fired := false
	tm := w.Schedule(2*time.Millisecond, func() { fired = true })
	if !tm.Cancel() {
		t.Fatal("Cancel of a pending timer returned false")
	}
	if tm.Cancel() {
		t.Fatal("second Cancel returned true")
	}
	var after *Timer
	after = w.Schedule(time.Millisecond, func() {})
	eng.Run()
	if fired {
		t.Fatal("canceled timer fired")
	}
	if after.Pending() {
		t.Fatal("uncanceled timer still pending after Run")
	}
	if w.Pending() != 0 {
		t.Errorf("pending = %d, want 0", w.Pending())
	}
}

// TestWheelCoarseLevels pins the hierarchical part: timers far beyond
// level 0's span cascade down and still fire within a tick of their
// expiry.
func TestWheelCoarseLevels(t *testing.T) {
	eng := New()
	w := eng.Wheel()
	// Spread timers across all levels: level 0 spans 64 ticks (3.2 ms at
	// the default 50 µs tick), level 1 ~205 ms, level 2 ~13 s.
	delays := []Duration{
		time.Millisecond,       // level 0
		100 * time.Millisecond, // level 1
		time.Second,            // level 2
		30 * time.Second,       // level 3
	}
	fired := make([]Time, len(delays))
	for i, d := range delays {
		i, d := i, d
		w.Schedule(d, func() { fired[i] = eng.Now() })
	}
	eng.Run()
	for i, d := range delays {
		if fired[i] == 0 {
			t.Fatalf("timer %d (%v) never fired", i, d)
		}
		if fired[i] < Time(d) || fired[i] > Time(d)+Time(2*w.Tick()) {
			t.Errorf("timer %d fired at %v, want within 2 ticks after %v", i, fired[i], d)
		}
	}
}

// TestWheelSleep pins the backoff primitive: Sleep parks the proc for at
// least d and resumes it on the wheel's boundary.
func TestWheelSleep(t *testing.T) {
	eng := New()
	w := eng.Wheel()
	var woke Time
	eng.Go("sleeper", func(p *Proc) {
		w.Sleep(p, 3*time.Millisecond)
		woke = p.Now()
	})
	eng.Run()
	if woke < Time(3*time.Millisecond) {
		t.Fatalf("woke at %v, before the 3ms sleep", woke)
	}
	if eng.LiveProcs() != 0 {
		t.Fatalf("%d procs leaked", eng.LiveProcs())
	}
}

// TestWheelRescheduleDuringFire pins that a callback may arm new timers
// (the retransmit-backoff shape: each firing schedules the next).
func TestWheelRescheduleDuringFire(t *testing.T) {
	eng := New()
	w := eng.Wheel()
	count := 0
	var step func()
	step = func() {
		count++
		if count < 5 {
			w.Schedule(time.Millisecond, step)
		}
	}
	w.Schedule(time.Millisecond, step)
	eng.Run()
	if count != 5 {
		t.Fatalf("chained firings = %d, want 5", count)
	}
}
