package sim

// Resource models a single server with FIFO service order — in this
// reproduction, a CPU or a disk arm. A caller "uses" the resource for a
// service duration; concurrent users queue. Because service is FIFO and
// non-preemptive, the resource is fully described by the instant it next
// becomes free, which keeps the model O(1) per use.
type Resource struct {
	eng  *Engine
	name string

	freeAt Time // instant the resource next becomes idle

	busy     Duration // accumulated service time, for utilization stats
	uses     int64
	statFrom Time
}

// NewResource returns an idle resource.
func NewResource(e *Engine, name string) *Resource {
	return &Resource{eng: e, name: name, statFrom: e.Now()}
}

// Use enqueues a service demand of duration d for proc p and blocks p until
// the service completes. It returns the completion instant.
func (r *Resource) Use(p *Proc, d Duration) Time {
	if d < 0 {
		d = 0
	}
	start := r.eng.now
	if r.freeAt > start {
		start = r.freeAt
	}
	done := start.Add(d)
	r.freeAt = done
	r.busy += d
	r.uses++
	p.SleepUntil(done)
	return done
}

// UseAsync enqueues a service demand without blocking; fn runs at completion.
// Used for fire-and-forget work such as device interrupts.
func (r *Resource) UseAsync(d Duration, fn func()) Time {
	if d < 0 {
		d = 0
	}
	start := r.eng.now
	if r.freeAt > start {
		start = r.freeAt
	}
	done := start.Add(d)
	r.freeAt = done
	r.busy += d
	r.uses++
	if fn != nil {
		r.eng.At(done, fn)
	}
	return done
}

// Charge accounts service time without blocking anyone — used when the
// demanding party is already described by another mechanism but the
// resource's utilization should still reflect the work.
func (r *Resource) Charge(d Duration) {
	r.UseAsync(d, nil)
}

// FreeAt reports when the resource next becomes idle.
func (r *Resource) FreeAt() Time { return r.freeAt }

// Utilization reports the busy fraction since stats were last reset. It is
// capped at 1 even if demand currently exceeds capacity (queued work counts
// toward future intervals).
func (r *Resource) Utilization() float64 {
	elapsed := r.eng.now.Sub(r.statFrom)
	if elapsed <= 0 {
		return 0
	}
	u := float64(r.busy) / float64(elapsed)
	if u > 1 {
		u = 1
	}
	return u
}

// Uses reports how many service demands have been accepted since reset.
func (r *Resource) Uses() int64 { return r.uses }

// BusyTime reports the total service time accepted since reset (it may
// extend past the current instant when work is queued).
func (r *Resource) BusyTime() Duration { return r.busy }

// ResetStats zeroes the utilization counters.
// ResetMeters aliases ResetStats so a resource drops into an
// obs.ResetSet alongside the other meters.
func (r *Resource) ResetMeters() { r.ResetStats() }

func (r *Resource) ResetStats() {
	r.busy = 0
	r.uses = 0
	r.statFrom = r.eng.now
}
