package ipcsim

import (
	"bytes"
	"testing"

	"iolite/internal/core"
	"iolite/internal/mem"
	"iolite/internal/sim"
)

type env struct {
	eng   *sim.Engine
	costs *sim.CostModel
	vm    *mem.VM
	cpu   *sim.Resource
	kern  *mem.Domain
	prodD *mem.Domain
	consD *mem.Domain
	pool  *core.Pool
}

func newEnv() *env {
	e := sim.New()
	c := sim.DefaultCosts()
	vm := mem.NewVM(e, c, 128<<20)
	kern := vm.NewDomain("kernel", true)
	prod := vm.NewDomain("producer", false)
	cons := vm.NewDomain("consumer", false)
	return &env{
		eng:   e,
		costs: c,
		vm:    vm,
		cpu:   sim.NewResource(e, "cpu"),
		kern:  kern,
		prodD: prod,
		consD: cons,
		pool:  core.NewPool(vm, prod, "producer"),
	}
}

func pat(n int) []byte {
	d := make([]byte, n)
	for i := range d {
		d[i] = byte(i*31 + 5)
	}
	return d
}

func TestCopyPipeEndToEnd(t *testing.T) {
	ev := newEnv()
	pp := New(ev.eng, ev.costs, ev.cpu, ev.vm, ModeCopy, ev.consD)
	want := pat(300 << 10) // forces many capacity-bounded rounds
	var got []byte
	ev.eng.Go("writer", func(p *sim.Proc) {
		pp.Write(p, want)
		pp.CloseWrite(p)
	})
	ev.eng.Go("reader", func(p *sim.Proc) {
		dst := make([]byte, 8192)
		for {
			n := pp.Read(p, dst)
			if n == 0 {
				return
			}
			got = append(got, dst[:n]...)
		}
	})
	ev.eng.Run()
	if !bytes.Equal(got, want) {
		t.Fatalf("pipe corrupted data: %d vs %d bytes", len(got), len(want))
	}
	moved, copied, switches := pp.Stats()
	if moved != int64(len(want)) {
		t.Errorf("moved = %d", moved)
	}
	if copied != 2*int64(len(want)) {
		t.Errorf("copied = %d, want 2x payload (in + out)", copied)
	}
	if switches == 0 {
		t.Error("no context switches recorded despite blocking")
	}
	if ev.vm.UsedBy(mem.TagSockBuf) != 0 {
		t.Error("kernel pipe buffer pages leaked")
	}
}

func TestRefPipeZeroCopyAndGrants(t *testing.T) {
	ev := newEnv()
	pp := New(ev.eng, ev.costs, ev.cpu, ev.vm, ModeRef, ev.consD)
	want := pat(200 << 10)
	var got []byte
	var srcID uint64
	var sameBuf bool
	ev.eng.Go("writer", func(p *sim.Proc) {
		agg := core.PackBytes(p, ev.pool, want)
		srcID = agg.Slices()[0].Buf.ID()
		pp.WriteAgg(p, agg)
		pp.CloseWrite(p)
	})
	ev.eng.Go("reader", func(p *sim.Proc) {
		for {
			a := pp.ReadAgg(p)
			if a == nil {
				return
			}
			// Consumer's domain must be able to read (grant happened).
			core.CheckReadable(a, ev.consD)
			sameBuf = a.Slices()[0].Buf.ID() == srcID
			got = append(got, a.Materialize()...)
			a.Release()
		}
	})
	ev.eng.Run()
	if !bytes.Equal(got, want) {
		t.Fatal("ref pipe corrupted data")
	}
	if !sameBuf {
		t.Error("reader did not receive the producer's physical buffer")
	}
	_, copied, _ := pp.Stats()
	if copied != 0 {
		t.Errorf("ref pipe copied %d bytes, want 0", copied)
	}
}

func TestRefPipeCheaperThanCopyPipe(t *testing.T) {
	// The Figure 5/13 economics: moving N bytes through an IO-Lite pipe
	// must cost much less CPU than through a copy pipe.
	const n = 256 << 10
	elapsed := func(mode Mode) sim.Duration {
		ev := newEnv()
		pp := New(ev.eng, ev.costs, ev.cpu, ev.vm, mode, ev.consD)
		var doneAt sim.Time
		ev.eng.Go("writer", func(p *sim.Proc) {
			if mode == ModeCopy {
				pp.Write(p, pat(n))
			} else {
				pp.WriteAgg(p, core.PackBytes(nil, ev.pool, pat(n)))
			}
			pp.CloseWrite(p)
		})
		ev.eng.Go("reader", func(p *sim.Proc) {
			if mode == ModeCopy {
				dst := make([]byte, 16384)
				for pp.Read(p, dst) != 0 {
				}
			} else {
				for {
					a := pp.ReadAgg(p)
					if a == nil {
						break
					}
					a.Release()
				}
			}
			doneAt = p.Now()
		})
		ev.eng.Run()
		return sim.Duration(doneAt)
	}
	copyTime := elapsed(ModeCopy)
	refTime := elapsed(ModeRef)
	if refTime*2 >= copyTime {
		t.Fatalf("ref pipe (%v) not ≥2x cheaper than copy pipe (%v)", refTime, copyTime)
	}
}

func TestCopyPipeBlocksAtCapacity(t *testing.T) {
	ev := newEnv()
	pp := New(ev.eng, ev.costs, ev.cpu, ev.vm, ModeCopy, ev.consD)
	writerDone := false
	ev.eng.Go("writer", func(p *sim.Proc) {
		pp.Write(p, pat(CapDefault+1)) // one byte over capacity
		writerDone = true
	})
	ev.eng.Run() // no reader: writer must still be blocked
	if writerDone {
		t.Fatal("writer completed past pipe capacity with no reader")
	}
	if ev.eng.LiveProcs() != 1 {
		t.Fatalf("LiveProcs = %d, want the blocked writer", ev.eng.LiveProcs())
	}
}

func TestPipeEOFOnlyAfterDrain(t *testing.T) {
	ev := newEnv()
	pp := New(ev.eng, ev.costs, ev.cpu, ev.vm, ModeCopy, ev.consD)
	var reads []int
	ev.eng.Go("writer", func(p *sim.Proc) {
		pp.Write(p, pat(100))
		pp.CloseWrite(p)
	})
	ev.eng.Go("reader", func(p *sim.Proc) {
		p.Sleep(1e6) // let writer close first
		dst := make([]byte, 64)
		for {
			n := pp.Read(p, dst)
			reads = append(reads, n)
			if n == 0 {
				return
			}
		}
	})
	ev.eng.Run()
	if len(reads) < 2 || reads[len(reads)-1] != 0 {
		t.Fatalf("reads = %v, want data then EOF", reads)
	}
	total := 0
	for _, n := range reads {
		total += n
	}
	if total != 100 {
		t.Fatalf("read %d bytes, want 100", total)
	}
}

func TestModeMismatchPanics(t *testing.T) {
	ev := newEnv()
	cp := New(ev.eng, ev.costs, ev.cpu, ev.vm, ModeCopy, ev.consD)
	rp := New(ev.eng, ev.costs, ev.cpu, ev.vm, ModeRef, ev.consD)
	ev.eng.Go("t", func(p *sim.Proc) {
		for _, f := range []func(){
			func() { cp.WriteAgg(p, nil) },
			func() { cp.ReadAgg(p) },
			func() { rp.Write(p, []byte("x")) },
			func() { rp.Read(p, make([]byte, 1)) },
		} {
			func() {
				defer func() {
					if recover() == nil {
						t.Error("mode mismatch did not panic")
					}
				}()
				f()
			}()
		}
	})
	ev.eng.Run()
}
