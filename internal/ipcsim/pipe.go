// Package ipcsim models UNIX pipes in two flavors: the conventional
// copy-based pipe (data is copied into a bounded kernel buffer on write and
// out again on read) and the IO-Lite pipe (§4.4), which passes buffer
// aggregates by reference with persistent cross-domain read grants, making
// producer/consumer IPC copy-free.
package ipcsim

import (
	"iolite/internal/core"
	"iolite/internal/mem"
	"iolite/internal/sim"
)

// Mode selects the pipe implementation.
type Mode int

// Pipe flavors.
const (
	ModeCopy Mode = iota // conventional BSD pipe
	ModeRef              // IO-Lite reference-passing pipe
)

// CapDefault is the conventional kernel pipe buffer size.
const CapDefault = 64 << 10

// Pipe is a unidirectional byte stream between two protection domains on
// one host.
type Pipe struct {
	eng   *sim.Engine
	costs *sim.CostModel
	cpu   *sim.Resource // host CPU; nil = uncharged
	vm    *mem.VM

	mode         Mode
	cap          int
	readerDomain *mem.Domain

	// Copy mode: a byte FIFO in kernel memory.
	buf []byte
	// Ref mode: a FIFO of aggregates.
	aggs []*core.Agg

	bytes   int
	readers sim.WaitQueue
	writers sim.WaitQueue
	wClosed bool
	rClosed bool

	// rNotify/wNotify fire (if set) whenever the read/write side becomes
	// ready: data or EOF for the reader, space or EPIPE for the writer.
	// Readiness descriptors hang their poll wakeups here.
	rNotify func()
	wNotify func()

	kernPages int // TagSockBuf-style accounting of the kernel pipe buffer

	bytesMoved  int64
	copiesMoved int64 // bytes physically copied (0 in ref mode)
	switches    int64 // blocking transitions, each charged a context switch
}

// New creates a pipe. readerDomain is the consuming protection domain (ref
// mode grants it read access to transferred chunks); vm may be nil to skip
// kernel-buffer memory accounting.
func New(eng *sim.Engine, costs *sim.CostModel, cpu *sim.Resource, vm *mem.VM, mode Mode, readerDomain *mem.Domain) *Pipe {
	return &Pipe{
		eng:          eng,
		costs:        costs,
		cpu:          cpu,
		vm:           vm,
		mode:         mode,
		cap:          CapDefault,
		readerDomain: readerDomain,
	}
}

// Mode returns the pipe's flavor.
func (pp *Pipe) Mode() Mode { return pp.mode }

// use charges CPU time to p.
func (pp *Pipe) use(p *sim.Proc, d sim.Duration) {
	if pp.cpu != nil {
		pp.cpu.Use(p, d)
	} else if d > 0 {
		p.Sleep(d)
	}
}

// block parks p on q, then charges the context switch that the blocking
// transition costs. The park must come first: yielding between a state
// check and the enqueue would lose wakeups issued in between.
func (pp *Pipe) block(p *sim.Proc, q *sim.WaitQueue) {
	pp.switches++
	q.Wait(p)
	pp.use(p, pp.costs.ProcSwitch)
}

// accountKernBuf tracks the kernel pipe buffer's memory.
func (pp *Pipe) accountKernBuf() {
	if pp.vm == nil {
		return
	}
	want := mem.PagesFor(pp.bytes)
	if pp.mode == ModeRef {
		want = 0 // aggregates are IO-Lite memory already accounted by their pool
	}
	if want > pp.kernPages {
		pp.vm.Reserve(mem.TagSockBuf, want-pp.kernPages)
		pp.kernPages = want
	} else if want < pp.kernPages {
		pp.vm.Release(mem.TagSockBuf, pp.kernPages-want)
		pp.kernPages = want
	}
}

// Write sends the contents of data down a copy-mode pipe: one syscall plus
// a physical copy into the kernel buffer, admitted piecewise as the reader
// drains. Panics on a ref-mode pipe.
func (pp *Pipe) Write(p *sim.Proc, data []byte) {
	if pp.mode != ModeCopy {
		panic("ipcsim: Write on ref-mode pipe; use WriteAgg")
	}
	if pp.wClosed {
		panic("ipcsim: write on closed pipe")
	}
	for off := 0; off < len(data); {
		for pp.bytes >= pp.cap {
			if pp.rClosed {
				return
			}
			pp.block(p, &pp.writers)
		}
		if pp.rClosed {
			// No reader will ever drain this: discard the rest (the
			// caller's EPIPE is the descriptor layer's ErrClosed).
			return
		}
		take := len(data) - off
		if room := pp.cap - pp.bytes; take > room {
			take = room
		}
		pp.use(p, pp.costs.Copy(take))
		if pp.rClosed {
			// The reader vanished while the copy was charged: the buffer
			// was discarded, do not repopulate it.
			return
		}
		pp.buf = append(pp.buf, data[off:off+take]...)
		pp.bytes += take
		pp.bytesMoved += int64(take)
		pp.copiesMoved += int64(take)
		pp.accountKernBuf()
		pp.readers.Wake(-1)
		pp.noteReadable()
		off += take
	}
}

// Read fills dst from a copy-mode pipe, returning the count (0 at EOF): one
// syscall plus a physical copy out of the kernel buffer.
func (pp *Pipe) Read(p *sim.Proc, dst []byte) int {
	if pp.mode != ModeCopy {
		panic("ipcsim: Read on ref-mode pipe; use ReadAgg")
	}
	for pp.bytes == 0 {
		if pp.wClosed || pp.rClosed {
			// EOF, or this end itself was closed while we were blocked (a
			// concurrent Close of the read fd): nothing left to consume.
			return 0
		}
		pp.block(p, &pp.readers)
	}
	n := copy(dst, pp.buf)
	pp.use(p, pp.costs.Copy(n))
	if pp.rClosed {
		// CloseRead discarded the buffer while the copy-out was charged;
		// the bytes already copied into dst are all there is to consume.
		return n
	}
	pp.buf = pp.buf[n:]
	pp.bytes -= n
	pp.copiesMoved += int64(n)
	pp.accountKernBuf()
	pp.writers.Wake(-1)
	pp.noteWritable()
	return n
}

// WriteAgg sends an aggregate down a ref-mode pipe by reference: pointer
// manipulation per slice and (first time per chunk) a read grant for the
// reader's domain. Ownership of agg transfers to the pipe. Panics on a
// copy-mode pipe. The syscall that carried the write is charged by the
// descriptor layer's entry point, not here.
func (pp *Pipe) WriteAgg(p *sim.Proc, agg *core.Agg) {
	pp.PutAgg(p, agg)
}

// PutAgg is the kernel-internal enqueue (also used by the splice path). It
// reports false when the reader is gone and the aggregate was discarded
// (the caller's EPIPE).
func (pp *Pipe) PutAgg(p *sim.Proc, agg *core.Agg) bool {
	if pp.mode != ModeRef {
		panic("ipcsim: PutAgg on copy-mode pipe; use Write")
	}
	if pp.wClosed {
		panic("ipcsim: write on closed pipe")
	}
	n := agg.Len()
	pp.use(p, sim.Duration(agg.NumSlices())*pp.costs.AggOp)
	for pp.bytes > 0 && pp.bytes+n > pp.cap {
		if pp.rClosed {
			break
		}
		pp.block(p, &pp.writers)
	}
	if pp.rClosed {
		agg.Release()
		return false
	}
	core.Transfer(p, agg, pp.readerDomain)
	pp.aggs = append(pp.aggs, agg)
	pp.bytes += n
	pp.bytesMoved += int64(n)
	pp.readers.Wake(-1)
	pp.noteReadable()
	return true
}

// ReadAgg receives the next aggregate from a ref-mode pipe (nil at EOF).
// The caller owns the returned aggregate. As with WriteAgg, the carrying
// syscall is charged at the descriptor boundary.
func (pp *Pipe) ReadAgg(p *sim.Proc) *core.Agg {
	return pp.TakeAgg(p)
}

// TakeAgg is the kernel-internal dequeue (also used by the splice path).
func (pp *Pipe) TakeAgg(p *sim.Proc) *core.Agg {
	if pp.mode != ModeRef {
		panic("ipcsim: TakeAgg on copy-mode pipe; use Read")
	}
	for len(pp.aggs) == 0 {
		if pp.wClosed || pp.rClosed {
			return nil
		}
		pp.block(p, &pp.readers)
	}
	a := pp.aggs[0]
	pp.aggs = pp.aggs[1:]
	pp.bytes -= a.Len()
	pp.use(p, sim.Duration(a.NumSlices())*pp.costs.AggOp)
	pp.writers.Wake(-1)
	pp.noteWritable()
	return a
}

// WriteClosed reports whether the write end has been closed.
func (pp *Pipe) WriteClosed() bool { return pp.wClosed }

// ReadClosed reports whether the read end has been closed.
func (pp *Pipe) ReadClosed() bool { return pp.rClosed }

// CloseRead marks the reader gone: buffered data is discarded and blocked
// writers wake (their remaining writes are dropped — the simulated EPIPE).
func (pp *Pipe) CloseRead(p *sim.Proc) {
	pp.rClosed = true
	pp.buf = nil
	for _, a := range pp.aggs {
		a.Release()
	}
	pp.aggs = nil
	pp.bytes = 0
	pp.accountKernBuf()
	pp.writers.Wake(-1)
	// A reader blocked on this very pipe (a ring worker executing a read op
	// while the application closes the fd) must wake too, to observe EOF.
	pp.readers.Wake(-1)
	pp.noteWritable()
	pp.noteReadable()
}

// CloseWrite marks end of stream; blocked readers see EOF once drained.
func (pp *Pipe) CloseWrite(p *sim.Proc) {
	pp.wClosed = true
	pp.readers.Wake(-1)
	pp.noteReadable()
}

// Stats reports total bytes moved, bytes physically copied, and blocking
// context switches.
func (pp *Pipe) Stats() (moved, copied, switches int64) {
	return pp.bytesMoved, pp.copiesMoved, pp.switches
}

// ReadReady reports whether a read right now would complete without
// parking: data is buffered, or EOF/teardown is observable.
func (pp *Pipe) ReadReady() bool {
	if pp.mode == ModeCopy {
		return pp.bytes > 0 || pp.wClosed || pp.rClosed
	}
	return len(pp.aggs) > 0 || pp.wClosed || pp.rClosed
}

// CanWrite reports whether writing n bytes right now would be admitted
// without parking, mirroring each mode's admission rule (copy mode admits
// piecewise into free room; ref mode admits whole aggregates when the pipe
// is empty or the result fits the cap). Closed pipes never block — the
// write errors instead.
func (pp *Pipe) CanWrite(n int) bool {
	if pp.rClosed || pp.wClosed {
		return true
	}
	if pp.mode == ModeCopy {
		return pp.bytes+n <= pp.cap
	}
	return pp.bytes == 0 || pp.bytes+n <= pp.cap
}

// SetReadNotify registers fn to fire whenever the read side becomes ready
// (data arrives, the writer closes, or this end closes).
func (pp *Pipe) SetReadNotify(fn func()) { pp.rNotify = fn }

// SetWriteNotify registers fn to fire whenever the write side becomes
// ready (space frees, or the reader departs).
func (pp *Pipe) SetWriteNotify(fn func()) { pp.wNotify = fn }

func (pp *Pipe) noteReadable() {
	if pp.rNotify != nil {
		pp.rNotify()
	}
}

func (pp *Pipe) noteWritable() {
	if pp.wNotify != nil {
		pp.wNotify()
	}
}
