module iolite

go 1.24
