// Package iolite is the public face of this IO-Lite reproduction: a unified
// I/O buffering and caching system (Pai, Druschel, Zwaenepoel; OSDI '99 /
// TOCS 18(1)) built on a deterministic simulated operating system.
//
// The paper's primary contribution — immutable I/O buffers shared by
// reference through mutable buffer aggregates, a unified file cache, an
// IOL_read/IOL_write API, cross-subsystem optimizations like checksum
// caching — lives in the core packages re-exported here. A System bundles a
// complete simulated machine: virtual memory with protection domains, a
// disk and file system, the unified cache, a TCP-like network stack with a
// zero-copy send path, and copy-free IPC.
//
// I/O goes through per-process integer file descriptors, exactly as the
// paper's Fig. 2 presents it: one IOL_read/IOL_write pair (and the
// copy-based POSIX read/write) works identically on regular files, pipes,
// and network sockets.
//
// Quick start:
//
//	sys := iolite.NewSystem(iolite.SystemConfig{})
//	sys.FS.Create("/hello", 4096)
//	proc := sys.NewProcess("app", 1<<20)
//	sys.Run(func(p *iolite.Proc) {
//	    fd, _ := sys.Open(p, proc, "/hello")
//	    agg, _ := sys.IOLRead(p, proc, fd, 4096) // zero-copy cached read
//	    defer agg.Release()
//	    _ = agg.Materialize()
//	    sys.Close(p, proc, fd)
//	})
//
// See examples/ for realistic scenarios (a web server, a CGI pipeline, the
// converted UNIX tools) and internal/experiments for the reproduction of
// every figure in the paper's evaluation.
package iolite

import (
	"iolite/internal/cache"
	"iolite/internal/core"
	"iolite/internal/fsim"
	"iolite/internal/ipcsim"
	"iolite/internal/kernel"
	"iolite/internal/sim"
)

// Re-exported core types: the buffer aggregate ADT of §3.1/§3.4 and the
// descriptor surface.
type (
	// Agg is a mutable buffer aggregate over immutable IO-Lite buffers.
	Agg = core.Agg
	// Buffer is an immutable, refcounted, generation-numbered I/O buffer.
	Buffer = core.Buffer
	// Slice is a ⟨buffer, offset, length⟩ tuple.
	Slice = core.Slice
	// Pool is an access-controlled buffer allocation pool.
	Pool = core.Pool
	// Proc is a simulated process context.
	Proc = sim.Proc
	// Process is a protection domain with its default pool and its file
	// descriptor table.
	Process = kernel.Process
	// File is a file in the simulated file system.
	File = fsim.File
	// Pipe is a UNIX pipe (copy-mode or IO-Lite reference-mode).
	Pipe = ipcsim.Pipe
	// Desc is the vnode-style descriptor interface behind every fd;
	// implement it and Process.Install it to add new descriptor kinds.
	Desc = kernel.Desc
	// DescKind names a descriptor's flavor.
	DescKind = kernel.DescKind
	// LimitConfig configures a rate-limiting descriptor (bytes/sec,
	// burst, optionally a shared TokenBucket).
	LimitConfig = kernel.LimitConfig
	// TokenBucket is a wheel-driven token bucket; share one across
	// several LimitConfigs to enforce an aggregate tenant rate.
	TokenBucket = kernel.TokenBucket
)

// Pipe modes.
const (
	PipeCopy = ipcsim.ModeCopy
	PipeRef  = ipcsim.ModeRef
)

// MaxIO is a read/splice length that exceeds any queued data: "everything
// one call can yield".
const MaxIO = kernel.MaxIO

// Descriptor kinds.
const (
	KindFile     = kernel.KindFile
	KindPipe     = kernel.KindPipe
	KindSocket   = kernel.KindSocket
	KindListener = kernel.KindListener
	KindObject   = kernel.KindObject
)

// Descriptor-layer errors. End of stream is io.EOF.
var (
	ErrBadFD        = kernel.ErrBadFD
	ErrClosed       = kernel.ErrClosed
	ErrNotSupported = kernel.ErrNotSupported
	ErrNotExist     = kernel.ErrNotExist
	// ErrCorrupt reports a checksum-verifying descriptor whose stream did
	// not match its expected checksum.
	ErrCorrupt = kernel.ErrCorrupt
)

// PipeOf returns the pipe behind a pipe descriptor (for Stats).
func PipeOf(d Desc) (*Pipe, bool) { return kernel.PipeOf(d) }

// NewAggDesc wraps a sealed aggregate as a read-only object descriptor
// (KindObject): install it with Process.Install and serve it with the
// splice fast path — System.Splice/SpliceAt move sealed buffer references
// from files, sockets, ref-mode pipes, and objects to sockets and pipes
// entirely in-kernel, with zero copy charge.
func (s *System) NewAggDesc(a *Agg) Desc { return kernel.NewAggDesc(s.Machine, a) }

// NewCksumDesc wraps any descriptor with read-side integrity
// verification: every byte read through it folds into a running Internet
// checksum (charged through the checksum cache when data arrives as
// sealed aggregates), and end of stream compares against want — a
// mismatch surfaces as ErrCorrupt instead of a clean io.EOF.
func (s *System) NewCksumDesc(inner Desc, want uint16) Desc {
	return kernel.NewCksumDesc(s.Machine, inner, want)
}

// NewLimitDesc wraps any descriptor with a token-bucket byte-rate
// limiter: reads, writes, and splices through it debit the bucket, and a
// blocking caller over its allowance parks on the shared timer wheel
// until tokens refill (nonblocking descriptors see ErrAgain and a poll
// wakeup when the bucket turns solvent). Pass cfg.Bucket to share one
// allowance across several descriptors of the same tenant.
func (s *System) NewLimitDesc(inner Desc, cfg LimitConfig) Desc {
	return kernel.NewLimitDesc(s.Machine, inner, cfg)
}

// NewTokenBucket builds a standalone bucket on the system's engine for
// sharing across NewLimitDesc wrappers.
func (s *System) NewTokenBucket(ratePerSec, burst int64) *TokenBucket {
	return kernel.NewTokenBucket(s.Eng, ratePerSec, burst)
}

// SystemConfig sizes a simulated machine.
type SystemConfig struct {
	// MemBytes is physical memory; 0 selects the paper's 128 MB.
	MemBytes int64
	// CachePolicy selects the unified file cache replacement policy:
	// "unified" (default, the paper's §3.7 rule), "LRU", or "GDS".
	CachePolicy string
	// ChecksumCache enables the cross-subsystem Internet checksum cache.
	ChecksumCache bool
}

// System is a complete simulated machine running IO-Lite.
type System struct {
	*kernel.Machine
}

// NewSystem builds a machine.
func NewSystem(cfg SystemConfig) *System {
	eng := sim.New()
	kcfg := kernel.Config{
		MemBytes:      cfg.MemBytes,
		ChecksumCache: cfg.ChecksumCache,
	}
	switch cfg.CachePolicy {
	case "", "unified":
		kcfg.Policy = cache.NewUnified()
	case "LRU", "lru":
		kcfg.Policy = cache.NewLRU()
	case "GDS", "gds":
		kcfg.Policy = cache.NewGDS()
	default:
		panic("iolite: unknown cache policy " + cfg.CachePolicy)
	}
	return &System{Machine: kernel.NewMachine(eng, sim.DefaultCosts(), kcfg)}
}

// Run executes body as a simulated process and drives the machine until all
// simulated activity completes.
func (s *System) Run(body func(p *Proc)) {
	s.Eng.Go("main", body)
	s.Eng.Run()
}

// Go starts an additional simulated process (for producer/consumer
// scenarios); call Run (or s.Eng.Run) to drive everything.
func (s *System) Go(name string, body func(p *Proc)) {
	s.Eng.Go(name, body)
}
